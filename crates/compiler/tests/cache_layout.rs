//! Regression tests pinning the `compcerto-cache/1` on-disk entry layout.
//!
//! [`Cache::store`] and [`Cache::probe`] live in lockstep: the probe
//! validates the exact fixed layout the store emits (single prefix match,
//! no JSON parse), so any drift between the two — a renamed field, a
//! reordered member, a changed escape — silently turns every warm probe
//! into a miss, or worse, accepts a tampered entry. These tests perturb
//! **every field the store emits** and assert the probe evicts each
//! variant, recompiles, and rewrites a valid entry; and that the pristine
//! layout itself matches the documented schema byte for byte.

use compiler::serve::{cache_key, compiler_fingerprint, fnv_hex, options_fingerprint};
use compiler::{CompilerOptions, Jobs, ServeConfig, Server, CACHE_SCHEMA};

const REQ: &str = r#"{"schema":"compcerto-serve/1","op":"compile","id":1,"units":[{"source":"int f(int x) { return x + 1; }"}]}"#;

fn tmpdir(tag: &str) -> String {
    let d = std::env::temp_dir().join(format!(
        "ccomp-cache-layout-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("tmpdir");
    d.to_string_lossy().into_owned()
}

fn test_server(dir: &str) -> Server {
    Server::new(ServeConfig {
        opts: CompilerOptions::validated().with_metrics(),
        jobs: Jobs::N(1),
        cache_dir: dir.to_string(),
    })
    .expect("server")
}

/// The single cache entry written by a one-unit compile: `(path, bytes)`.
fn sole_entry(dir: &str) -> (String, String) {
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .expect("cache dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one cache entry");
    let path = entries.remove(0);
    let raw = std::fs::read_to_string(&path).expect("entry bytes");
    (path.to_string_lossy().into_owned(), raw)
}

/// The six values of a pristine entry, in emission order.
#[derive(Clone, Copy)]
struct Fields<'a> {
    schema: &'a str,
    key: &'a str,
    compiler: &'a str,
    options: &'a str,
    payload_fnv: &'a str,
    payload: &'a str,
}

/// Parse an entry by its fixed markers (this *is* the layout under test:
/// if `store` changes its rendering, this parse — and with it every test
/// below — fails loudly).
fn parse_entry(raw: &str) -> Fields<'_> {
    let mut rest = raw.strip_prefix("{\"schema\":\"").expect("schema marker");
    let mut grab = |end: &str| -> &str {
        let at = rest.find(end).expect("field marker");
        let v = &rest[..at];
        rest = &rest[at + end.len()..];
        v
    };
    let schema = grab("\",\"key\":\"");
    let key = grab("\",\"compiler\":\"");
    let compiler = grab("\",\"options\":\"");
    let options = grab("\",\"payload_fnv\":\"");
    let payload_fnv = grab("\",\"payload\":\"");
    let payload = grab("\"}\n");
    assert!(rest.is_empty(), "trailing bytes after entry: {rest:?}");
    Fields {
        schema,
        key,
        compiler,
        options,
        payload_fnv,
        payload,
    }
}

fn render_entry(f: &Fields) -> String {
    format!(
        "{{\"schema\":\"{}\",\"key\":\"{}\",\"compiler\":\"{}\",\"options\":\"{}\",\
         \"payload_fnv\":\"{}\",\"payload\":\"{}\"}}\n",
        f.schema, f.key, f.compiler, f.options, f.payload_fnv, f.payload
    )
}

/// The artifact member of a compile response, independent of the per-unit
/// cache tag and the request-level stats.
fn strip_tags(r: &str) -> String {
    let r = r
        .replace("\"cache\":\"miss\"", "")
        .replace("\"cache\":\"hit\"", "")
        .replace("\"cache\":\"evict-miss\"", "");
    r[..r.rfind(",\"cache\":{").expect("stats member")].to_string()
}

#[test]
fn pristine_entry_matches_documented_layout() {
    let dir = tmpdir("pristine");
    let mut s = test_server(&dir);
    let cold = s.handle_line(REQ).expect("cold compile");
    assert!(cold.contains("\"cache\":\"miss\""), "{cold}");

    let (_, raw) = sole_entry(&dir);
    let f = parse_entry(&raw);
    // Re-rendering the parsed fields reproduces the file byte for byte —
    // the parse above covered every byte `store` wrote.
    assert_eq!(render_entry(&f), raw);
    assert_eq!(f.schema, CACHE_SCHEMA);
    // The filename is the content-addressed key.
    assert_eq!(f.key.len(), 16, "key is a 16-hex fingerprint");
    assert_eq!(f.compiler, compiler_fingerprint());
    assert_eq!(
        f.options,
        options_fingerprint(CompilerOptions::validated().with_metrics())
    );
    // The checksum is over the *unescaped* payload; for this artifact the
    // escaped form contains `\n` sequences, so re-deriving over the raw
    // escaped bytes must NOT match (pinning which form is checksummed).
    assert!(f.payload.contains("\\n"), "artifact payload spans lines");
    assert_ne!(fnv_hex(f.payload.as_bytes()), f.payload_fnv);
    // And the key includes the fingerprints (content-addressing contract).
    let fp_key_a = cache_key("int f;", "o1", "c1", "s1");
    let fp_key_b = cache_key("int f;", "o1", "c2", "s1");
    assert_ne!(fp_key_a, fp_key_b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_perturbed_field_is_evicted_and_recompiled() {
    let dir = tmpdir("perturb");
    let mut s = test_server(&dir);
    let cold = s.handle_line(REQ).expect("cold compile");
    let want_artifact = strip_tags(&cold);
    let (path, pristine) = sole_entry(&dir);

    // Each perturbation edits exactly one field (or the framing) of the
    // pristine entry, labeled for the failure message.
    type Perturb = (&'static str, Box<dyn Fn(&Fields) -> String>);
    let hexflip = |v: &str| -> String {
        let mut s = v.to_string();
        let last = if s.ends_with('0') { "1" } else { "0" };
        s.replace_range(s.len() - 1.., last);
        s
    };
    let cases: Vec<Perturb> = vec![
        (
            "schema version bumped",
            Box::new(|f: &Fields| {
                render_entry(&Fields {
                    schema: "compcerto-cache/2",
                    ..*f
                })
            }),
        ),
        (
            "key field flipped",
            Box::new(move |f: &Fields| {
                render_entry(&Fields {
                    key: &hexflip(f.key),
                    ..*f
                })
            }),
        ),
        (
            "compiler fingerprint flipped",
            Box::new(move |f: &Fields| {
                render_entry(&Fields {
                    compiler: &hexflip(f.compiler),
                    ..*f
                })
            }),
        ),
        (
            "options fingerprint flipped",
            Box::new(move |f: &Fields| {
                render_entry(&Fields {
                    options: &hexflip(f.options),
                    ..*f
                })
            }),
        ),
        (
            "payload checksum flipped",
            Box::new(move |f: &Fields| {
                render_entry(&Fields {
                    payload_fnv: &hexflip(f.payload_fnv),
                    ..*f
                })
            }),
        ),
        (
            "payload byte flipped",
            Box::new(|f: &Fields| {
                let mutated = f.payload.replacen('i', "j", 1);
                assert_ne!(mutated, f.payload, "payload has a byte to flip");
                render_entry(&Fields {
                    payload: &mutated,
                    ..*f
                })
            }),
        ),
        (
            "payload escape invalid",
            Box::new(|f: &Fields| {
                render_entry(&Fields {
                    payload: &f.payload.replacen("\\n", "\\x", 1),
                    ..*f
                })
            }),
        ),
        // Truncation works on the raw bytes, not the parsed fields — the
        // loop below substitutes the halved pristine entry for this label.
        ("entry truncated mid-payload", Box::new(|_| String::new())),
        (
            "closing brace lost",
            Box::new(|f: &Fields| {
                let full = render_entry(f);
                full[..full.len() - 3].to_string()
            }),
        ),
    ];

    for (label, perturb) in cases {
        // Re-parse the pristine bytes each round (the previous round's
        // recompile rewrote the entry; it must be back to pristine).
        let raw = std::fs::read_to_string(&path).expect("entry re-read");
        assert_eq!(raw, pristine, "recompile restored the entry ({label})");
        let f = parse_entry(&raw);
        let mutated = if label == "entry truncated mid-payload" {
            pristine[..pristine.len() / 2].to_string()
        } else {
            perturb(&f)
        };
        assert_ne!(mutated, pristine, "perturbation is a no-op: {label}");
        std::fs::write(&path, &mutated).expect("write perturbed entry");

        let resp = s.handle_line(REQ).expect("probe after perturbation");
        assert!(
            resp.contains("\"cache\":\"evict-miss\""),
            "{label}: probe accepted a corrupt entry: {resp}"
        );
        assert!(
            resp.contains("\"evict\":1"),
            "{label}: eviction not tallied: {resp}"
        );
        // The recompiled artifact is byte-identical to the cold compile —
        // corruption degrades to a recompute, never to a wrong answer.
        assert_eq!(strip_tags(&resp), want_artifact, "{label}");
    }

    // After the last eviction cycle the entry is valid again: warm hit.
    let warm = s.handle_line(REQ).expect("warm probe");
    assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
    assert_eq!(strip_tags(&warm), want_artifact);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_entry_is_a_plain_miss_not_an_eviction() {
    let dir = tmpdir("miss");
    let mut s = test_server(&dir);
    let cold = s.handle_line(REQ).expect("cold");
    assert!(cold.contains("\"evict\":0"), "{cold}");
    let (path, _) = sole_entry(&dir);
    std::fs::remove_file(&path).expect("drop entry");
    let again = s.handle_line(REQ).expect("recompile");
    assert!(
        again.contains("\"cache\":\"miss\"") && again.contains("\"evict\":0"),
        "a vanished entry is a miss, not an eviction: {again}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
