//! Arena-vs-legacy stepping equivalence (DESIGN.md §13).
//!
//! The batched fast interpreters only engage on trace-off budgets
//! (`RunBudget::no_trace`), so the same query can be driven down both
//! paths: a ring-trace budget single-steps every stage through the legacy
//! `step` relation, while a trace-off budget runs the arena/fused-dispatch
//! loops. Over the fixed seed block the two must be indistinguishable —
//! identical verdicts (answers, external-call traces, final globals) and
//! identical `lts.*` counter deltas (steps, external calls, outcomes).

use compcerto_core::iface::CQuery;
use compcerto_core::lts::RunBudget;
use compcerto_core::obs;
use compcerto_gen::generate::gen_queries;
use compcerto_gen::{generate, GenCfg};
use compiler::{
    check_query, compile_all, CompilerOptions, ExtLib, QueryVerdict, StagePrograms,
};
use mem::Val;

/// Seeds in the fixed block (the `interp_campaign` block, kept small
/// enough for a debug-profile tier-1 run).
const SEEDS: u64 = 64;
/// Queries per seed (the difftest default).
const QUERIES: usize = 3;
/// Fuel per stage execution (the difftest default).
const FUEL: u64 = 2_000_000;

fn verdict_repr(v: &QueryVerdict) -> String {
    match v {
        QueryVerdict::Agree(obs) => format!("agree:{obs}"),
        QueryVerdict::Skipped { stage } => format!("skip@{stage}"),
        QueryVerdict::Finding { kind, detail } => format!("finding:{kind}:{detail}"),
    }
}

#[test]
fn fast_path_matches_legacy_on_seed_block() {
    for seed in 0..SEEDS {
        let prog = generate(seed, &GenCfg::default());
        let srcs = prog.render();
        let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
        let (units, symtab) =
            compile_all(&refs, CompilerOptions::default()).expect("seed compiles");
        let sp = StagePrograms::build(&units).expect("stage programs build");
        let lib = ExtLib::demo(symtab.clone());
        let init = symtab.build_init_mem().expect("initial memory");
        let (_, entry) = prog.entry();
        let vf = symtab.func_ptr(&entry.name).expect("entry symbol");
        let sig = sp.clight.sig_of(&entry.name).expect("entry signature");

        // Legacy path: ring trace forces single-stepping in the runner.
        let legacy = RunBudget::with_fuel(FUEL).trace_capacity(16);
        // Fast path: trace-off budgets take the batched interpreters.
        let fast = RunBudget::with_fuel(FUEL).no_trace();

        for args in gen_queries(seed, entry.nparams as usize, QUERIES) {
            let q = CQuery {
                vf,
                sig: sig.clone(),
                args: args.iter().map(|&a| Val::Int(a)).collect(),
                mem: init.clone(),
            };

            let c0 = obs::counters();
            let vl = check_query(&sp, &symtab, &lib, &q, &legacy);
            let dl = obs::counters().since(&c0);

            let c1 = obs::counters();
            let vf_ = check_query(&sp, &symtab, &lib, &q, &fast);
            let df = obs::counters().since(&c1);

            assert_eq!(
                verdict_repr(&vl),
                verdict_repr(&vf_),
                "seed {seed} args {args:?}: verdict diverged between legacy and fast paths"
            );
            assert_eq!(
                dl, df,
                "seed {seed} args {args:?}: lts.* counters diverged between legacy and fast paths"
            );
        }
    }
}
