//! Byte-identity battery for the serve cache (ISSUE 9): a cached artifact
//! must be indistinguishable from a freshly compiled one. Cold, warm and
//! partial-hit responses are compared byte-for-byte (modulo the cache
//! tags, which are the thing under test), and the hit/miss counters must
//! be invariant to `--jobs`.

mod serve_util;

use serve_util::{artifacts_only, compile_req, fresh_dir, request_stats, Serve};

/// Three units sharing a symbol table: `B` calls into `A`, `C` is
/// independent. Function bodies are free to change without touching the
/// table (names + signatures only), which is what makes partial hits
/// possible.
const UNIT_A: &str = "int add(int x, int y) { return x + y; }";
const UNIT_B: &str =
    "extern int add(int, int); int twice(int n) { int r; r = add(n, n); return r; }";
const UNIT_C: &str = "int scale(int x) { return x * 3 + 7; }";
/// `UNIT_C` with its body edited — same name, same signature, new code.
const UNIT_C2: &str = "int scale(int x) { return x * 4 + 7; }";

#[test]
fn cold_warm_and_partial_hits_are_byte_identical() {
    let dir = fresh_dir("identity");
    let mut s = Serve::spawn(&dir, &[]);

    let cold = s.req(&compile_req(1, &[UNIT_A, UNIT_B, UNIT_C]));
    assert_eq!(
        request_stats(&cold),
        "\"cache\":{\"hit\":0,\"miss\":3,\"evict\":0}",
        "{cold}"
    );

    let warm = s.req(&compile_req(1, &[UNIT_A, UNIT_B, UNIT_C]));
    assert_eq!(
        request_stats(&warm),
        "\"cache\":{\"hit\":3,\"miss\":0,\"evict\":0}",
        "{warm}"
    );
    assert_eq!(
        artifacts_only(&cold),
        artifacts_only(&warm),
        "a cache hit must reproduce the compiled artifact byte-for-byte"
    );

    // Partial hit: edit one unit's body. Its siblings still hit — the
    // cache key sees names and signatures, not bodies.
    let partial = s.req(&compile_req(1, &[UNIT_A, UNIT_B, UNIT_C2]));
    assert_eq!(
        request_stats(&partial),
        "\"cache\":{\"hit\":2,\"miss\":1,\"evict\":0}",
        "{partial}"
    );
    // The two unchanged units' artifacts are bytes from the cold run.
    let tagless =
        |s: &str| s.replace("\"cache\":\"miss\",", "").replace("\"cache\":\"hit\",", "");
    let cold_units: Vec<&str> = cold.split("{\"unit\":").collect();
    let partial_units: Vec<&str> = partial.split("{\"unit\":").collect();
    assert_eq!(cold_units.len(), 4);
    for i in [1, 2] {
        assert_eq!(
            tagless(cold_units[i]),
            tagless(partial_units[i]),
            "unchanged unit {i} must serve the cold artifact"
        );
    }
    // The edited unit really was recompiled (different asm).
    assert_ne!(cold_units[3], partial_units[3]);

    assert_eq!(s.eof_wait().code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn responses_and_counters_are_jobs_invariant() {
    let batch = compile_req(1, &[UNIT_A, UNIT_B, UNIT_C]);
    let stats_req = "{\"schema\":\"compcerto-serve/1\",\"op\":\"stats\",\"id\":2}";
    let mut runs = Vec::new();
    for jobs in ["1", "4", "16"] {
        let dir = fresh_dir(&format!("jobs{jobs}"));
        let mut s = Serve::spawn(&dir, &["--jobs", jobs]);
        let cold = s.req(&batch);
        let warm = s.req(&batch);
        let stats = s.req(stats_req);
        assert_eq!(s.eof_wait().code(), Some(0));
        let _ = std::fs::remove_dir_all(&dir);
        runs.push((cold, warm, stats));
    }
    for (cold, warm, stats) in &runs[1..] {
        assert_eq!(
            cold, &runs[0].0,
            "cold responses must be byte-identical across --jobs"
        );
        assert_eq!(
            warm, &runs[0].1,
            "warm responses must be byte-identical across --jobs"
        );
        assert_eq!(
            stats, &runs[0].2,
            "serve.cache.* counters must be jobs-invariant"
        );
    }
    // And the counters say what the protocol stats said.
    assert!(
        runs[0].2.contains("\"serve.cache.hit\":3") && runs[0].2.contains("\"serve.cache.miss\":3"),
        "{}",
        runs[0].2
    );
}

#[test]
fn hits_survive_a_server_restart() {
    let dir = fresh_dir("restart-warm");
    let batch = compile_req(9, &[UNIT_A, UNIT_B, UNIT_C]);

    let mut s1 = Serve::spawn(&dir, &[]);
    let _cold = s1.req(&batch);
    let warm1 = s1.req(&batch);
    assert_eq!(s1.eof_wait().code(), Some(0));

    // A brand-new process over the same cache directory serves the same
    // bytes — the cache is on disk, not in the process.
    let mut s2 = Serve::spawn(&dir, &[]);
    let warm2 = s2.req(&batch);
    assert_eq!(warm1, warm2, "warm responses must survive a restart");
    assert_eq!(s2.eof_wait().code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}
