int arith(int p0, int p1) {
  int v0;
  int v1;
  v0 = 0;
  v1 = 0;
  v0 = ((p0 + (3 * p1)) - 7);
  v1 = ((v0 << 2) ^ (p0 & 255));
  v0 = ((v1 / 3) + (v0 % 5));
  return (v0 + (2 * v1));
}
