int loop(int p0) {
  int v0;
  int c0;
  v0 = 0;
  c0 = 0;
  while (c0 < 10) {
    v0 = (v0 + (p0 + c0));
    c0 = c0 + 1;
  }
  return v0;
}
