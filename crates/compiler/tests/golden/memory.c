extern long sum2(long*);
int acc = 0;
long buf[8];

int memory(int p0, int p1) {
  int v0;
  int v1;
  long w[2];
  long ws;
  v0 = 0;
  v1 = 0;
  buf[(p0 & 7)] = (long) ((p0 * 5));
  v1 = (int) buf[(p0 & 7)];
  acc = acc + (v1 + p1);
  v0 = acc;
  w[0] = (long) (v0);
  w[1] = (long) (v1);
  ws = sum2(w);
  return (int) ws;
}
