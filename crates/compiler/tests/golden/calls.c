extern int inc(int);

int wide(int p0, int p1, int p2, int p3, int p4, int p5) {
  return (((p0 + p1) + (p2 + p3)) + ((p4 + p5) * 2));
}

int calls(int p0, int p1) {
  int v0;
  int v1;
  v0 = 0;
  v1 = 0;
  v0 = wide(p0, p1, 1, 2, 3, 4);
  v1 = inc(v0);
  return (v1 - p0);
}
