int branch(int p0, int p1) {
  int v0;
  v0 = 0;
  if ((p0 - p1) > 0) {
    if ((p0 & 1) > 0) {
      v0 = (p0 - p1);
    } else {
      v0 = (p0 + p1);
    }
  } else {
    v0 = (p1 - p0);
  }
  return (v0 * 3);
}
