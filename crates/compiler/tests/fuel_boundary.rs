//! Fuel-boundary edges of the batched step loop, across all seven stage
//! interpreters.
//!
//! The runner checks fuel *before* every step, so a run that completes in
//! `n` steps needs fuel `n + 1` — and `step_batch` must honour a cut at
//! **any** intermediate fuel value, including one that lands between the
//! two halves of a fused RTL dispatch pair (the PR-8 fast path). These
//! tests find each stage's minimal completing fuel by sweeping upward from
//! zero, which exercises every cut point exactly once, and pin:
//!
//! * fuel 0 and fuel 1 are out-of-fuel for every stage (the program below
//!   needs more than one step at every level);
//! * every fuel below the minimum is out-of-fuel (monotone — no cut point
//!   completes early or wedges);
//! * the observation at the minimal fuel is byte-equal to the observation
//!   with surplus fuel (a tight budget never changes semantics);
//! * the diagnostic (ring-traced) step loop agrees with the batched
//!   no-trace fast path at the boundary fuels.

use compcerto_core::iface::CQuery;
use compcerto_core::lts::RunBudget;
use compiler::{
    compile_all, run_stage, CompilerOptions, ExtLib, Obs, StageOutcome, StagePrograms, STAGES,
};
use mem::Val;

/// A small program with a loop and external calls: enough steps that every
/// stage has interior cut points (and RTL has fused pairs spanning them),
/// small enough that the exhaustive fuel sweep stays fast.
const SRC: &str = "
    extern int inc(int);
    int run(int x) {
        int i; int s;
        s = x;
        for (i = 0; i < 3; i = i + 1) {
            s = inc(s);
            s = s + i;
        }
        return s;
    }
";

struct Fixture {
    sp: StagePrograms,
    symtab: compcerto_core::symtab::SymbolTable,
    lib: ExtLib,
    q: CQuery,
}

fn fixture() -> Fixture {
    let (units, symtab) =
        compile_all(&[SRC], CompilerOptions::validated()).expect("fixture compiles");
    let sp = StagePrograms::build(&units).expect("fixture links");
    let lib = ExtLib::demo(symtab.clone());
    let mem = symtab.build_init_mem().expect("init mem");
    let vf = symtab.func_ptr("run").expect("entry");
    let sig = sp.clight.sig_of("run").expect("entry sig");
    Fixture {
        sp,
        symtab,
        lib,
        q: CQuery {
            vf,
            sig,
            args: vec![Val::Int(5)],
            mem,
        },
    }
}

fn run_with(fx: &Fixture, stage: &str, budget: &RunBudget) -> StageOutcome {
    run_stage(&fx.sp, &fx.symtab, &fx.lib, stage, &fx.q, budget)
}

fn expect_obs(outcome: StageOutcome, what: &str) -> Obs {
    match outcome {
        StageOutcome::Ok(obs) => obs,
        other => panic!("{what}: expected completion, got {other:?}"),
    }
}

/// Generous cap on the sweep: every stage of this fixture completes in
/// well under this many steps.
const FUEL_CAP: u64 = 20_000;

#[test]
fn fuel_boundaries_are_exact_on_every_stage() {
    let fx = fixture();
    for stage in STAGES {
        let want = expect_obs(
            run_with(&fx, stage, &RunBudget::with_fuel(FUEL_CAP).no_trace()),
            stage,
        );

        // Sweep upward: every fuel below the minimum must be a clean
        // out-of-fuel — never a completion, a stuck state, or a panic —
        // no matter where inside a batch (or a fused RTL pair) the cut
        // lands.
        let mut minimal = None;
        for fuel in 0..FUEL_CAP {
            match run_with(&fx, stage, &RunBudget::with_fuel(fuel).no_trace()) {
                StageOutcome::Budget(_) => {}
                StageOutcome::Ok(obs) => {
                    assert_eq!(obs, want, "{stage}: observation at minimal fuel {fuel}");
                    minimal = Some(fuel);
                    break;
                }
                other => panic!("{stage}: fuel {fuel} produced {other:?}"),
            }
        }
        let minimal = minimal.unwrap_or_else(|| panic!("{stage}: no completion under {FUEL_CAP}"));

        // The fixture is long enough that fuel 0 and 1 sit strictly below
        // the boundary on every stage (so the loop above really asserted
        // them as out-of-fuel), and the boundary is interior — there are
        // genuine mid-run cut points on both sides.
        assert!(
            minimal > 2,
            "{stage}: minimal fuel {minimal} leaves no interior cut points"
        );

        // Surplus fuel changes nothing.
        let plus_one = expect_obs(
            run_with(&fx, stage, &RunBudget::with_fuel(minimal + 1).no_trace()),
            stage,
        );
        assert_eq!(plus_one, want, "{stage}: surplus fuel changed the observation");
    }
}

#[test]
fn traced_and_batched_paths_agree_at_the_boundary() {
    let fx = fixture();
    for stage in STAGES {
        // Find the batched fast path's minimal fuel …
        let mut minimal = None;
        for fuel in 0..FUEL_CAP {
            if let StageOutcome::Ok(_) =
                run_with(&fx, stage, &RunBudget::with_fuel(fuel).no_trace())
            {
                minimal = Some(fuel);
                break;
            }
        }
        let minimal = minimal.unwrap_or_else(|| panic!("{stage}: no completion under {FUEL_CAP}"));

        // … and pin the diagnostic (ring-traced) step loop to the same
        // boundary: out-of-fuel one below, the same observation at it.
        let traced_under = run_with(&fx, stage, &RunBudget::with_fuel(minimal - 1));
        assert!(
            matches!(traced_under, StageOutcome::Budget(_)),
            "{stage}: traced loop completed under the batched minimum: {traced_under:?}"
        );
        let traced_at = expect_obs(run_with(&fx, stage, &RunBudget::with_fuel(minimal)), stage);
        let batched_at = expect_obs(
            run_with(&fx, stage, &RunBudget::with_fuel(minimal).no_trace()),
            stage,
        );
        assert_eq!(
            traced_at, batched_at,
            "{stage}: traced and batched observations diverge at the boundary"
        );
    }
}
