//! Differential-testing regression suite (ISSUE.md satellite): 200
//! fixed-seed generated programs through the full cross-stage oracle, plus
//! committed regression reproducers.
//!
//! Everything here is budgeted and offline; the whole file must stay under
//! ~30 s in a debug build (the sweep uses the `--quick` oracle profile with
//! reduction disabled — there is nothing to reduce when a seed agrees, and
//! a regression here should fail fast rather than shrink).
//!
//! No genuine cross-stage disagreement survived the development sweeps
//! (500 seeds × 3 queries in release, plus this block); the committed
//! reproducers below are therefore the *worst-case shapes* the generator
//! produced during development — the program features most likely to
//! diverge between levels (stack-spilled 6-arg calls, the pointer-taking
//! `sum2` external, cross-unit calls, mutable-global writes) — pinned as
//! hand-written sources in the generator's exact dialect, so they keep
//! running even if the generator's seed→program mapping changes.

use compcerto_core::lts::RunBudget;
use compiler::{
    check_query, compile_all, run_seed, try_c_query, CompilerOptions, DifftestCfg, ExtLib,
    QueryVerdict, SeedOutcome, StagePrograms,
};
use mem::Val;

/// The oracle profile for this suite: quick generator, no reduction.
fn suite_cfg() -> DifftestCfg {
    DifftestCfg {
        reduce: false,
        ..DifftestCfg::quick()
    }
}

/// 200 fixed seeds through the full oracle. Any `Finding` is a regression:
/// either a real miscompile or an oracle bug — both block the suite.
#[test]
fn two_hundred_fixed_seeds_agree() {
    let cfg = suite_cfg();
    let mut agree = 0usize;
    let mut skipped = 0usize;
    for seed in 0..200u64 {
        let report = run_seed(seed, &cfg);
        match report.outcome {
            SeedOutcome::Agree { .. } => agree += 1,
            SeedOutcome::Skipped(_) => skipped += 1,
            SeedOutcome::Finding { kind, detail } => {
                panic!("seed {seed}: finding {kind}: {detail}");
            }
        }
    }
    // The quick-profile budget is generous enough that the vast majority of
    // generated programs complete; if most seeds start skipping, the oracle
    // has silently stopped testing anything.
    assert_eq!(agree + skipped, 200);
    assert!(
        agree >= 150,
        "only {agree}/200 seeds ran to a verdict ({skipped} budget-skipped); \
         the oracle budget no longer covers the generator's programs"
    );
}

/// The oracle is a pure function of `(seed, cfg)`: re-running a block of
/// seeds yields identical outcomes (this is what makes the campaign's JSON
/// byte-identical across `--jobs` settings).
#[test]
fn oracle_outcomes_are_reproducible() {
    let cfg = suite_cfg();
    for seed in [0u64, 7, 42, 123, 199] {
        let a = run_seed(seed, &cfg);
        let b = run_seed(seed, &cfg);
        assert_eq!(a.outcome, b.outcome, "seed {seed} not reproducible");
    }
}

/// Run one hand-written multi-unit program through the full stage oracle on
/// a set of queries, asserting agreement on each.
fn assert_units_agree(srcs: &[&str], entry: &str, arg_sets: &[Vec<i32>]) {
    let (units, symtab) =
        compile_all(srcs, CompilerOptions::validated()).expect("reproducer must compile");
    for u in &units {
        assert!(
            u.diagnostics.is_empty(),
            "validator rejected reproducer: {:?}",
            u.diagnostics
        );
    }
    let sp = StagePrograms::build(&units).expect("stage programs must link");
    let lib = ExtLib::demo(symtab.clone());
    let budget = RunBudget::with_fuel(2_000_000).no_trace();
    for args in arg_sets {
        let vals = args.iter().map(|&a| Val::Int(a)).collect();
        let q = try_c_query(&symtab, &units[units.len() - 1], entry, vals)
            .expect("entry query must build");
        match check_query(&sp, &symtab, &lib, &q, &budget) {
            QueryVerdict::Agree(obs) => {
                // Sanity: the baseline actually computed something printable.
                let _ = format!("{obs}");
            }
            QueryVerdict::Skipped { stage } => {
                panic!("reproducer query {args:?} budget-skipped at {stage}")
            }
            QueryVerdict::Finding { kind, detail } => {
                panic!("reproducer regressed: {kind} on {args:?}: {detail}")
            }
        }
    }
}

/// Committed reproducer 1 — stack-spilled arguments. A 6-parameter callee
/// forces arguments past the 4 `PARAM_REGS` onto `Outgoing` slots; this is
/// the shape where the Linear/Mach/Asm calling-convention transport is most
/// fragile (it was the hardest case to get right in the oracle's own
/// `LQuery`/`MQuery` construction, and the shape `constant-drift` mutants
/// most often escape through).
#[test]
fn regression_stack_spilled_arguments() {
    let src = r#"
int wide(int p0, int p1, int p2, int p3, int p4, int p5) {
  int v0;
  v0 = 0;
  v0 = (p0 + (2 * p1));
  v0 = (v0 + (3 * p2));
  v0 = (v0 + (5 * p3));
  v0 = (v0 + (7 * p4));
  v0 = (v0 + (11 * p5));
  return v0;
}

int u0f0(int p0, int p1) {
  int v0;
  int v1;
  v0 = 0;
  v1 = 0;
  v0 = wide(p0, p1, (p0 + p1), (p0 - p1), (p0 * 2), (p1 * 2));
  v1 = wide(1, 2, 3, 4, 5, 6);
  return (v0 + v1);
}
"#;
    assert_units_agree(
        &[src],
        "u0f0",
        &[vec![0, 0], vec![3, 4], vec![-7, 9], vec![1000, -1]],
    );
}

/// Committed reproducer 2 — the pointer-taking `sum2` external plus mutable
/// global writes. `sum2` reads two `i64`s through a pointer into a scratch
/// buffer the program has just written; the memory-visible-effects
/// comparison must observe the same final `buf`/`acc` at every level, and
/// the pointer argument must survive each level's own representation of it.
#[test]
fn regression_global_buffer_and_sum2() {
    let src = r#"
extern int inc(int);
extern long sum2(long*);
const int lim = 17;
int acc = 0;
long buf[8];

int u0f0(int p0, int p1) {
  int v0;
  int v1;
  int v2;
  long w[2];
  long ws;
  v0 = 0;
  v1 = 0;
  v2 = 0;
  buf[(p0 & 7)] = (long) ((p0 + 1));
  v1 = (int) buf[(p0 & 7)];
  v2 = inc(p1);
  w[0] = (long) (v1);
  w[1] = (long) (v2);
  ws = sum2(w);
  v0 = (int) ws;
  acc = acc + (v0);
  v1 = acc;
  buf[(v1 & 7)] = (long) (v1);
  v2 = (int) buf[(v1 & 7)];
  return (v0 - p0);
}
"#;
    assert_units_agree(&[src], "u0f0", &[vec![0, 0], vec![5, -5], vec![123, 456]]);
}

/// Committed reproducer 3 — cross-unit calls. The per-unit pipeline plus
/// `link_asm` must agree with the Clight-linked baseline when control flows
/// between translation units: in the per-unit world each interpreter sees
/// the other unit's functions only as outgoing questions, while the linked
/// `StagePrograms` resolve them internally.
#[test]
fn regression_cross_unit_calls() {
    let u0 = r#"
int u0f0(int p0, int p1) {
  int v0;
  v0 = 0;
  if ((p0 - p1) > 0) {
    v0 = (p0 - p1);
  } else {
    v0 = (p1 - p0);
  }
  return v0;
}
"#;
    let u1 = r#"
extern int inc(int);
extern int u0f0(int, int);

int u1f0(int p0, int p1) {
  int v0;
  int v1;
  int c0;
  v0 = 0;
  v1 = 0;
  c0 = 0;
  while (c0 < 4) {
    v1 = u0f0((p0 + c0), p1);
    v0 = (v0 + v1);
    c0 = c0 + 1;
  }
  v1 = inc(v0);
  return v1;
}
"#;
    assert_units_agree(&[u0, u1], "u1f0", &[vec![0, 0], vec![2, 9], vec![-3, -8]]);
}
