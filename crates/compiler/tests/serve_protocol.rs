//! Protocol battery for `ccomp-o serve` (ISSUE 9): the daemon must survive
//! anything its stdin produces — seeded garbage, oversized frames,
//! mid-frame EOF, unknown schemas — answering each with a typed `error`
//! frame and honoring the 0/1/2 exit contract (101 is forbidden by
//! construction). Plus: a kill-and-restart must serve byte-identical
//! responses from the on-disk cache, and the Unix-socket front end speaks
//! the same protocol.

mod serve_util;

use std::io::{BufRead, BufReader, Write};

use serve_util::{compile_req, fresh_dir, Serve};

const UNIT: &str = "int square(int x) { return x * x; }";

/// SplitMix64 — the workspace's seeded generator (no rand dependency).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[test]
fn seeded_garbage_never_kills_the_server() {
    let dir = fresh_dir("fuzz");
    let mut s = Serve::spawn(&dir, &[]);
    let mut rng = SplitMix64(0xc0ffee);
    for i in 0..100 {
        // Random bytes, newline-free and never whitespace-only (a blank
        // line legitimately gets no response). Odd rounds are truncated
        // JSON prefixes — the "mid-frame" shapes a crashed client leaves.
        let frame: Vec<u8> = if i % 2 == 0 {
            let len = 1 + (rng.next() % 200) as usize;
            std::iter::once(b'!')
                .chain((0..len).map(|_| {
                    let b = (rng.next() % 256) as u8;
                    if b == b'\n' || b == b'\r' {
                        b'x'
                    } else {
                        b
                    }
                }))
                .collect()
        } else {
            let full = compile_req(i, &[UNIT]);
            let cut = 1 + (rng.next() as usize % (full.len() - 1));
            full.as_bytes()[..cut].to_vec()
        };
        s.send_raw(&frame);
        let resp = s.read_line();
        assert!(
            resp.contains("\"op\":\"error\""),
            "garbage frame {i} must get a typed error frame, got: {resp}"
        );
    }
    // The server is still fully functional afterwards.
    let pong = s.req("{\"schema\":\"compcerto-serve/1\",\"op\":\"ping\",\"id\":1}");
    assert!(pong.contains("\"op\":\"pong\""), "{pong}");
    let result = s.req(&compile_req(2, &[UNIT]));
    assert!(result.contains("\"status\":\"ok\""), "{result}");
    assert_eq!(s.eof_wait().code(), Some(0), "exit must be 0, never 101");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn typed_errors_for_each_malformed_shape() {
    let dir = fresh_dir("shapes");
    let mut s = Serve::spawn(&dir, &[]);
    for (frame, expect) in [
        ("{not json", "parse-error"),
        ("{\"schema\":\"compcerto-serve/9\",\"op\":\"ping\"}", "unknown-schema"),
        ("{\"op\":\"ping\"}", "unknown-schema"),
        ("{\"schema\":\"compcerto-serve/1\",\"op\":\"frobnicate\"}", "unknown-op"),
        ("{\"schema\":\"compcerto-serve/1\"}", "missing-op"),
        ("{\"schema\":\"compcerto-serve/1\",\"op\":\"compile\",\"id\":1}", "bad-request"),
        (
            "{\"schema\":\"compcerto-serve/1\",\"op\":\"compile\",\"id\":1,\"units\":[]}",
            "bad-request",
        ),
    ] {
        let resp = s.req(frame);
        assert!(
            resp.contains("\"op\":\"error\"") && resp.contains(expect),
            "frame {frame} must yield a `{expect}` error, got: {resp}"
        );
    }
    // Non-UTF-8 bytes are lossily decoded into a parse error.
    s.send_raw(b"\xff\xfe\x80 not utf8");
    let resp = s.read_line();
    assert!(resp.contains("\"op\":\"error\""), "{resp}");
    assert_eq!(s.eof_wait().code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_frame_is_rejected_and_the_connection_survives() {
    let dir = fresh_dir("oversized");
    let mut s = Serve::spawn(&dir, &[]);
    // One byte past the cap: the frame is drained (never buffered whole)
    // and answered with a typed error.
    let big = vec![b'a'; compiler::MAX_FRAME_BYTES + 1];
    s.send_raw(&big);
    let resp = s.read_line();
    assert!(
        resp.contains("\"op\":\"error\"") && resp.contains("oversized-frame"),
        "{resp}"
    );
    // The next frame on the same connection still works.
    let pong = s.req("{\"schema\":\"compcerto-serve/1\",\"op\":\"ping\",\"id\":5}");
    assert!(pong.contains("\"op\":\"pong\""), "{pong}");
    assert_eq!(s.eof_wait().code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_frame_eof_exits_cleanly() {
    let dir = fresh_dir("mideof");
    let mut s = Serve::spawn(&dir, &[]);
    // An unterminated frame followed by EOF: the truncated tail is parsed
    // (and rejected) and the process exits 0.
    let stdin = {
        // Write without the trailing newline, then close.
        s.send_raw(b"{\"schema\":\"compcerto-serve/1\",\"op\":\"pi");
        s.eof_wait()
    };
    assert_eq!(stdin.code(), Some(0), "mid-frame EOF must exit 0, never 101");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_2() {
    let bin = env!("CARGO_BIN_EXE_ccomp-o");
    for args in [
        vec!["serve"],
        vec!["serve", "--cache-dir"],
        vec!["serve", "--cache-dir", "/tmp/x", "--frobnicate"],
        vec!["serve", "--cache-dir", "/tmp/x", "--jobs", "banana"],
    ] {
        let out = std::process::Command::new(bin)
            .args(&args)
            .output()
            .expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} must be a usage error (exit 2)"
        );
    }
}

#[test]
fn kill_and_restart_serves_identical_bytes() {
    let dir = fresh_dir("kill-restart");
    let batch = compile_req(3, &[UNIT, "int cube(int x) { return x * x * x; }"]);

    let mut s1 = Serve::spawn(&dir, &[]);
    let _cold = s1.req(&batch);
    let warm1 = s1.req(&batch);
    // Hard kill — no shutdown handshake, as a crashed or OOM-killed
    // server would leave things. The cache writes were atomic, so the
    // directory holds complete entries or none.
    s1.kill();

    let mut s2 = Serve::spawn(&dir, &[]);
    let warm2 = s2.req(&batch);
    assert_eq!(
        warm1, warm2,
        "a restarted server over the same cache dir must serve identical bytes"
    );
    assert_eq!(s2.eof_wait().code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unix_socket_speaks_the_same_protocol() {
    let dir = fresh_dir("unix");
    let sock = dir.join("serve.sock");
    let sock_str = sock.to_str().expect("socket path").to_string();
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_ccomp-o"))
        .args(["serve", "--cache-dir"])
        .arg(&dir)
        .args(["--socket", &sock_str])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve --socket");
    // Wait for the listener to come up.
    let mut stream = None;
    for _ in 0..200 {
        match std::os::unix::net::UnixStream::connect(&sock) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    let stream = stream.expect("socket did not come up");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut req = |frame: &str| -> String {
        writer.write_all(frame.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    };

    let pong = req("{\"schema\":\"compcerto-serve/1\",\"op\":\"ping\",\"id\":1}");
    assert!(pong.contains("\"op\":\"pong\""), "{pong}");
    let cold = req(&compile_req(2, &[UNIT]));
    assert!(cold.contains("\"cache\":\"miss\""), "{cold}");
    let warm = req(&compile_req(2, &[UNIT]));
    assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
    let ack = req("{\"schema\":\"compcerto-serve/1\",\"op\":\"shutdown\",\"id\":3}");
    assert!(ack.contains("\"op\":\"shutdown-ok\""), "{ack}");

    let status = child.wait().expect("wait");
    assert_eq!(status.code(), Some(0));
    assert!(!sock.exists(), "the socket file must be cleaned up");
    let _ = std::fs::remove_dir_all(&dir);
}
