//! Worker-pool determinism: the compiler's output must be byte-identical
//! for every `--jobs` setting. The pool dispatches by atomic index and
//! reassembles results in input order, so parallelism is unobservable in
//! the artifacts — this suite pins that contract down on pretty-printed
//! Asm-O, on the fault-injection campaign report, and on the error path.

use compiler::{
    compile_all_jobs, run_campaign, CampaignCfg, CompilerOptions, Jobs, StagePrograms,
    WorkloadCfg, WorkloadGen,
};

/// Pretty-print every Asm-O function of every unit, in unit order.
fn asm_dump(srcs: &[&str], opts: CompilerOptions, jobs: Jobs) -> String {
    let (units, _tbl) = compile_all_jobs(srcs, opts, jobs).expect("corpus compiles");
    let mut out = String::new();
    for u in &units {
        for f in &u.asm.functions {
            out.push_str(&f.dump());
        }
    }
    out
}

#[test]
fn jobs4_matches_jobs1_on_fixed_corpus() {
    let srcs = [
        "int mult(int n, int p) { return n * p; }",
        "extern int mult(int, int); int sqr(int n) { int r; r = mult(n, n); return r; }",
        "int f(int a, int b) { return (a + b) * (a - b); }",
        "long g(long x) { long y; y = x * 3 - 1; return y; }",
        "int h(int n) { int i; int s; s = 0; for (i = 0; i < n; i = i + 1) { s = s + i; } return s; }",
    ];
    for opts in [CompilerOptions::default(), CompilerOptions::none()] {
        let serial = asm_dump(&srcs, opts, Jobs::N(1));
        let par = asm_dump(&srcs, opts, Jobs::N(4));
        assert_eq!(serial, par, "Asm output depends on the worker count");
        // And an over-subscribed pool (more workers than units).
        let wide = asm_dump(&srcs, opts, Jobs::N(16));
        assert_eq!(serial, wide);
    }
}

#[test]
fn jobs4_matches_jobs1_on_generated_workloads() {
    // Generated programs all export `entry`, so compile them one unit at
    // a time — the fan-out under test here is the *intra-call* front-end /
    // back-end one.
    let mut gen = WorkloadGen::new(97);
    let cfg = WorkloadCfg::default();
    for _ in 0..6 {
        let (src, _arity) = gen.gen_program(&cfg);
        let serial = asm_dump(&[&src], CompilerOptions::default(), Jobs::N(1));
        let par = asm_dump(&[&src], CompilerOptions::default(), Jobs::N(4));
        assert_eq!(serial, par, "workload program diverged:\n{src}");
    }
}

#[test]
fn campaign_report_is_jobs_invariant() {
    let mk = |jobs| CampaignCfg {
        per_class: 3,
        jobs,
        ..CampaignCfg::default()
    };
    let serial = run_campaign(&mk(Jobs::N(1))).expect("campaign runs");
    let par = run_campaign(&mk(Jobs::N(4))).expect("campaign runs");
    // The rendered report is the external artifact; compare it bytewise.
    assert_eq!(format!("{serial}"), format!("{par}"));
}

#[test]
fn interned_symbols_are_jobs_invariant() {
    // `Sym` assignment (DESIGN.md §13) is a pure function of linked
    // program order, so the interpreter arenas built from a parallel
    // compilation must intern every name to the same dense id as a serial
    // one — ids leak into nothing observable, but drifting ids would be
    // the first symptom of a nondeterministic link order.
    let srcs = [
        "int mult(int n, int p) { return n * p; }",
        "extern int mult(int, int); int sqr(int n) { int r; r = mult(n, n); return r; }",
        "extern int sqr(int); int entry(int a) { int r; r = sqr(a); return r + a; }",
    ];
    let assignment = |jobs| {
        let (units, tbl) =
            compile_all_jobs(&srcs, CompilerOptions::default(), jobs).expect("corpus compiles");
        let sp = StagePrograms::build(&units).expect("stage programs build");
        let p = clight::fast::prepare(&sp.clight, &tbl);
        sp.clight
            .functions
            .iter()
            .map(|f| f.name.clone())
            .chain(sp.clight.externs.iter().map(|e| e.name.clone()))
            .map(|name| {
                let sym = p.syms.lookup(&name).expect("every linked name interns");
                (name, sym.index())
            })
            .collect::<Vec<_>>()
    };
    let serial = assignment(Jobs::N(1));
    assert_eq!(serial, assignment(Jobs::N(4)));
    assert_eq!(serial, assignment(Jobs::N(16)));
}

#[test]
fn error_reporting_is_jobs_invariant() {
    // Two bad units: the pool must report the *lowest-index* failure for
    // every jobs setting, not whichever worker lost the race.
    let srcs = [
        "int ok(int x) { return x; }",
        "int bad1(int x) { return y; }",
        "int bad2(int x) { return z; }",
    ];
    let e1 = compile_all_jobs(&srcs, CompilerOptions::default(), Jobs::N(1))
        .expect_err("must fail");
    let e4 = compile_all_jobs(&srcs, CompilerOptions::default(), Jobs::N(4))
        .expect_err("must fail");
    assert_eq!(format!("{e1:?}"), format!("{e4:?}"));
}
