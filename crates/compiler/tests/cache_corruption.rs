//! Corruption battery for the serve cache (ISSUE 9): every cache read
//! re-derives the payload checksum, so a truncated, bit-flipped or
//! mislabeled entry is detected, evicted (`serve.cache.evict`) and
//! recompiled transparently — corruption can cost time, never wrong bytes.

mod serve_util;

use std::path::{Path, PathBuf};

use serve_util::{artifacts_only, compile_req, fresh_dir, request_stats, Serve};

const UNIT: &str =
    "int mix(int a, int b) { int r; r = a * 3 + b; if (r > 10) { r = r - b; } return r; }";

/// The single cache entry in `dir` (these tests compile one unit).
fn sole_entry(dir: &Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read cache dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one cache entry");
    entries.pop().expect("entry")
}

/// Compile once cold, corrupt the entry with `mutate`, then assert the
/// next request evicts + recompiles to the same bytes and the one after
/// that hits again (the entry was rewritten clean).
fn corruption_round_trip(tag: &str, mutate: impl FnOnce(&Path)) {
    let dir = fresh_dir(tag);
    let mut s = Serve::spawn(&dir, &[]);
    let batch = compile_req(1, &[UNIT]);

    let cold = s.req(&batch);
    assert_eq!(
        request_stats(&cold),
        "\"cache\":{\"hit\":0,\"miss\":1,\"evict\":0}"
    );
    mutate(&sole_entry(&dir));

    let evicted = s.req(&batch);
    assert_eq!(
        request_stats(&evicted),
        "\"cache\":{\"hit\":0,\"miss\":1,\"evict\":1}",
        "a corrupt entry must be evicted and recompiled: {evicted}"
    );
    assert_eq!(
        artifacts_only(&cold),
        artifacts_only(&evicted),
        "recompilation after eviction must reproduce the cold bytes"
    );

    let warm = s.req(&batch);
    assert_eq!(
        request_stats(&warm),
        "\"cache\":{\"hit\":1,\"miss\":0,\"evict\":0}",
        "the rewritten entry must hit again: {warm}"
    );

    // The cumulative counter agrees with the per-request stats.
    let stats = s.req("{\"schema\":\"compcerto-serve/1\",\"op\":\"stats\",\"id\":2}");
    assert!(stats.contains("\"serve.cache.evict\":1"), "{stats}");

    assert_eq!(s.eof_wait().code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_is_evicted() {
    corruption_round_trip("truncate", |path| {
        let raw = std::fs::read_to_string(path).expect("read entry");
        std::fs::write(path, &raw[..raw.len() / 2]).expect("truncate entry");
    });
}

#[test]
fn bit_flipped_payload_is_evicted() {
    corruption_round_trip("bitflip", |path| {
        // Flip one byte in the middle of the artifact payload; the entry
        // stays well-formed JSON, so only the checksum can catch it.
        let raw = std::fs::read_to_string(path).expect("read entry");
        let at = raw.find("AllocFrame").expect("asm text in payload");
        let mut bytes = raw.into_bytes();
        bytes[at] ^= 0x01;
        std::fs::write(path, bytes).expect("rewrite entry");
    });
}

#[test]
fn wrong_key_entry_is_evicted() {
    corruption_round_trip("wrongkey", |path| {
        // The entry claims a different key than its filename — a
        // misplaced or maliciously renamed artifact must not be served.
        let raw = std::fs::read_to_string(path).expect("read entry");
        let key_at = raw.find("\"key\":\"").expect("key member") + 7;
        let mut bytes = raw.into_bytes();
        bytes[key_at] = if bytes[key_at] == b'0' { b'1' } else { b'0' };
        std::fs::write(path, bytes).expect("rewrite entry");
    });
}

#[test]
fn wrong_schema_entry_is_evicted() {
    corruption_round_trip("schema", |path| {
        let raw = std::fs::read_to_string(path).expect("read entry");
        std::fs::write(path, raw.replace("compcerto-cache/1", "compcerto-cache/0"))
            .expect("rewrite entry");
    });
}

#[test]
fn garbage_entry_is_evicted() {
    corruption_round_trip("garbage", |path| {
        std::fs::write(path, "not json at all \x7f\x00").expect("rewrite entry");
    });
}

#[test]
fn eviction_deletes_the_corrupt_file() {
    let dir = fresh_dir("evict-deletes");
    let mut s = Serve::spawn(&dir, &[]);
    let batch = compile_req(1, &[UNIT]);
    let _ = s.req(&batch);
    let entry = sole_entry(&dir);
    std::fs::write(&entry, "garbage").expect("corrupt entry");
    let _ = s.req(&batch);
    // The recompile rewrote the entry; it must now be valid again (the
    // warm request below never sees the corrupt bytes).
    let raw = std::fs::read_to_string(&entry).expect("entry rewritten");
    assert!(raw.contains("compcerto-cache/1"), "{raw}");
    let warm = s.req(&batch);
    assert_eq!(
        request_stats(&warm),
        "\"cache\":{\"hit\":1,\"miss\":0,\"evict\":0}"
    );
    assert_eq!(s.eof_wait().code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}
