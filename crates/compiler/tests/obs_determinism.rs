//! Observability determinism (DESIGN.md §10): the *deterministic* half of
//! a metrics report — the counter bag — must be byte-identical across
//! worker-pool widths and across repeated runs; the *volatile* half (pool
//! stats, wall-clock spans) is stripped by the schema-aware normalizer
//! ([`compiler::normalize_metrics_json`], itself pinned by unit tests in
//! `compiler::obs`).
//!
//! Two corpora are pinned:
//!
//! * the five committed golden workloads (`tests/golden/*.c`), compiled
//!   with metrics on under `--jobs 1/4/16`;
//! * a 50-seed difftest block run through [`run_seed_obs`] under the same
//!   three pool widths, with coverage and stage sets folded in seed order.
//!
//! Counters are compared after normalization (the full JSON document still
//! contains `pool`/`timings_ms`, which legitimately differ run to run).

use std::collections::BTreeSet;

use compcerto_gen::Coverage;
use compiler::{
    compile_all_jobs, normalize_metrics_json, par_map, run_seed_obs, CompilerOptions, DifftestCfg,
    Jobs, MetricsReport,
};

const GOLDEN: [&str; 5] = [
    include_str!("golden/arith.c"),
    include_str!("golden/branch.c"),
    include_str!("golden/calls.c"),
    include_str!("golden/loop.c"),
    include_str!("golden/memory.c"),
];

const DIFFTEST_SEEDS: u64 = 50;

/// Compile the golden corpus with metrics on under `jobs` and return the
/// *normalized* metrics JSON (volatile sections stripped).
fn golden_metrics_json(jobs: Jobs) -> String {
    let (units, _tbl) = compile_all_jobs(
        &GOLDEN,
        CompilerOptions::validated().with_metrics(),
        jobs,
    )
    .expect("golden corpus compiles");
    let report = MetricsReport::from_units("golden-compile", &units);
    normalize_metrics_json(&report.to_json()).expect("schema marker present")
}

/// Run the 50-seed difftest block under `jobs`; returns the normalized
/// metrics JSON plus the folded coverage/stage observations.
fn difftest_metrics_json(jobs: Jobs) -> (String, Coverage, BTreeSet<&'static str>) {
    let cfg = DifftestCfg::quick();
    let seeds: Vec<u64> = (0..DIFFTEST_SEEDS).collect();
    let results = par_map(jobs, &seeds, |_, &s| run_seed_obs(s, &cfg));
    let mut coverage = Coverage::default();
    let mut stages = BTreeSet::new();
    let mut report = MetricsReport {
        kind: "difftest".into(),
        ..MetricsReport::default()
    };
    for (seed_report, obs) in &results {
        assert!(
            !matches!(
                seed_report.outcome,
                compiler::SeedOutcome::Finding { .. }
            ),
            "seed {} produced a finding",
            seed_report.seed
        );
        coverage.merge(&obs.coverage);
        stages.extend(obs.stages_compared.iter().copied());
        report.absorb_counters(&obs.counters);
    }
    let json = normalize_metrics_json(&report.to_json()).expect("schema marker present");
    (json, coverage, stages)
}

#[test]
fn golden_metrics_are_jobs_invariant_and_repeatable() {
    let j1 = golden_metrics_json(Jobs::N(1));
    let j4 = golden_metrics_json(Jobs::N(4));
    let j16 = golden_metrics_json(Jobs::N(16));
    assert_eq!(j1, j4, "golden metrics differ between --jobs 1 and 4");
    assert_eq!(j1, j16, "golden metrics differ between --jobs 1 and 16");
    // Two runs at the same width must also agree byte-for-byte: counters
    // may not depend on thread-local history or allocation addresses.
    let again = golden_metrics_json(Jobs::N(4));
    assert_eq!(j4, again, "golden metrics differ across two identical runs");
    // The normalized document keeps the deterministic sections...
    assert!(j1.contains("\"schema\": \"compcerto-obs/1\""));
    assert!(j1.contains("\"counters\""));
    assert!(j1.contains("\"ir.asm_instrs\""));
    assert!(j1.contains("\"solver.rtl_iterations\""));
    // The abstract-interpretation tier (DESIGN.md §12) reports its own
    // solver effort and per-pass rewrite deltas, all jobs-invariant.
    assert!(j1.contains("\"solver.value.iters\""));
    assert!(j1.contains("\"solver.needed.iters\""));
    assert!(
        !j1.contains("\"solver.value.iters\": 0,"),
        "value-analysis solver never iterated on the golden corpus"
    );
    assert!(
        !j1.contains("\"solver.needed.iters\": 0,"),
        "neededness solver never iterated on the golden corpus"
    );
    assert!(j1.contains("\"ir.vprop_rewrites\""));
    assert!(j1.contains("\"ir.ndce_eliminated\""));
    assert!(
        !j1.contains("\"ir.ndce_eliminated\": 0,"),
        "ndce deleted nothing on the golden corpus"
    );
    // ...and has actually stripped the volatile ones.
    assert!(!j1.contains("\"pool\""), "pool stats must be stripped");
    assert!(!j1.contains("\"timings_ms\""), "timings must be stripped");
}

#[test]
fn difftest_block_metrics_are_jobs_invariant_and_repeatable() {
    let (j1, cov1, st1) = difftest_metrics_json(Jobs::N(1));
    let (j4, cov4, st4) = difftest_metrics_json(Jobs::N(4));
    let (j16, cov16, st16) = difftest_metrics_json(Jobs::N(16));
    assert_eq!(j1, j4, "difftest metrics differ between --jobs 1 and 4");
    assert_eq!(j1, j16, "difftest metrics differ between --jobs 1 and 16");
    assert_eq!(cov1, cov4);
    assert_eq!(cov1, cov16);
    assert_eq!(st1, st4);
    assert_eq!(st1, st16);
    // Repeatability at a fixed width.
    let (again, _, _) = difftest_metrics_json(Jobs::N(4));
    assert_eq!(j4, again, "difftest metrics differ across two runs");
    // The 50-seed block must be doing real work: interpreters ran at every
    // stage, memory traffic happened, both solver families iterated.
    assert!(j1.contains("\"lts.runs\""));
    assert!(!j1.contains("\"lts.runs\": 0,"), "no LTS runs recorded");
    assert!(!j1.contains("\"mem.loads\": 0,"), "no memory loads recorded");
    assert!(
        !j1.contains("\"solver.rtl_iterations\": 0,"),
        "RTL dataflow solver never iterated"
    );
    assert!(
        !j1.contains("\"solver.validate_iterations\": 0,"),
        "validator dataflow solver never iterated"
    );
    assert!(
        !j1.contains("\"solver.value.iters\": 0,"),
        "value-analysis solver never iterated over the difftest block"
    );
    assert!(
        !j1.contains("\"solver.needed.iters\": 0,"),
        "neededness solver never iterated over the difftest block"
    );
}
