//! Golden snapshot tests for `ccomp-o --dump-asm` (ISSUE.md satellite).
//!
//! Five committed workloads under `tests/golden/` are compiled with the
//! default optimization pipeline and their Asm-O dump — rendered *exactly*
//! as the `ccomp-o` binary renders it — is compared byte-for-byte against
//! the committed `.s` snapshot. Any codegen change, however small, shows up
//! as a readable diff here before it reaches the differential oracle.
//!
//! To refresh the snapshots after an intentional codegen change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p compiler --test golden_asm
//! ```
//!
//! then review and commit the updated `.s` files.

use std::fmt::Write as _;
use std::path::PathBuf;

use compiler::{compile_all, CompilerOptions};

/// The five committed workloads: straight-line arithmetic (constprop/CSE
/// fodder), branching, a counted loop, internal + external calls with a
/// stack-spilled 6-arg callee, and global/pointer memory traffic.
const WORKLOADS: [&str; 5] = ["arith", "branch", "loop", "calls", "memory"];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Render the Asm dump of one compiled file exactly as
/// `ccomp-o --dump-asm FILE` prints it.
fn dump_asm(file: &str, unit: &compiler::CompiledUnit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; Asm-O for {file}");
    for f in &unit.asm.functions {
        out.push_str(&f.dump());
    }
    out
}

#[test]
fn asm_snapshots_are_stable() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    let mut refreshed = Vec::new();
    for name in WORKLOADS {
        let c_path = dir.join(format!("{name}.c"));
        let s_path = dir.join(format!("{name}.s"));
        let src = std::fs::read_to_string(&c_path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", c_path.display()));
        let (units, _symtab) = compile_all(&[&src], CompilerOptions::default())
            .unwrap_or_else(|e| panic!("{name}.c must compile: {e}"));
        let got = dump_asm(&format!("{name}.c"), &units[0]);

        if update {
            std::fs::write(&s_path, &got)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", s_path.display()));
            refreshed.push(name);
            continue;
        }

        let want = std::fs::read_to_string(&s_path).unwrap_or_else(|e| {
            panic!(
                "missing snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                s_path.display()
            )
        });
        if got != want {
            // Byte-exact comparison, but report the first differing line so
            // the failure is actionable without a diff tool.
            let mismatch = got
                .lines()
                .zip(want.lines())
                .position(|(g, w)| g != w)
                .map(|i| {
                    format!(
                        "first diff at line {}:\n  golden: {}\n  got:    {}",
                        i + 1,
                        want.lines().nth(i).unwrap_or(""),
                        got.lines().nth(i).unwrap_or("")
                    )
                })
                .unwrap_or_else(|| {
                    format!(
                        "same common prefix, lengths differ (golden {} lines, got {})",
                        want.lines().count(),
                        got.lines().count()
                    )
                });
            panic!(
                "asm snapshot mismatch for {name}.c — {mismatch}\n\
                 (intentional codegen change? refresh with \
                 UPDATE_GOLDEN=1 cargo test -p compiler --test golden_asm)"
            );
        }
    }
    if update {
        // Make `UPDATE_GOLDEN=1` runs loud so a refresh is never silent.
        eprintln!("refreshed {} snapshot(s): {refreshed:?}", refreshed.len());
    }
}

/// Snapshots are a function of the source alone: recompiling yields the
/// same bytes (guards against nondeterminism sneaking into codegen, which
/// would also break `--jobs` byte-identity).
#[test]
fn asm_dump_is_deterministic() {
    let dir = golden_dir();
    for name in WORKLOADS {
        let src = std::fs::read_to_string(dir.join(format!("{name}.c"))).unwrap();
        let (u1, _) = compile_all(&[&src], CompilerOptions::default()).unwrap();
        let (u2, _) = compile_all(&[&src], CompilerOptions::default()).unwrap();
        assert_eq!(
            dump_asm(name, &u1[0]),
            dump_asm(name, &u2[0]),
            "{name}: asm dump must be deterministic"
        );
    }
}
