//! End-to-end tests of the `ccomp-o` command-line front end: compile real
//! files from disk, run them, check Thm 3.8 from the shell, and fail with
//! useful diagnostics — the workflow a downstream user actually sees.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output};

fn ccomp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ccomp-o"))
        .args(args)
        .output()
        .expect("spawn ccomp-o")
}

fn write_temp(name: &str, body: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ccomp-o-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(body.as_bytes()).unwrap();
    path
}

const PROG: &str = "
    extern int inc(int);
    int entry(int a, int b) {
        int c; int r;
        c = a * b;
        if (c > 10) { c = c - a; }
        r = inc(c);
        return r;
    }";

#[test]
fn run_executes_and_prints_the_result() {
    let f = write_temp("run.c", PROG);
    let out = ccomp(&["--run", "entry", "3", "5", f.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // 3*5 = 15 > 10, 15-3 = 12, inc(12) = 13.
    assert!(stdout.contains("entry([3, 5]) = 13"), "{stdout}");
}

#[test]
fn check_reports_thm38() {
    let f = write_temp("check.c", PROG);
    let out = ccomp(&["--check", "entry", "2", "3", f.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Thm 3.8 ✓"), "{stdout}");
    assert!(stdout.contains("external boundaries"), "{stdout}");
}

#[test]
fn dump_asm_prints_code() {
    let f = write_temp("dump.c", PROG);
    let out = ccomp(&["--dump-asm", f.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Asm-O"), "{stdout}");
    assert!(stdout.contains("entry"), "{stdout}");
}

#[test]
fn dump_rtl_prints_code() {
    let f = write_temp("dumprtl.c", PROG);
    let out = ccomp(&["--dump-rtl", f.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RTL"), "{stdout}");
}

#[test]
fn o0_and_default_agree_on_the_answer() {
    let f = write_temp("o0.c", PROG);
    let d = ccomp(&["--run", "entry", "4", "4", f.to_str().unwrap()]);
    let o0 = ccomp(&["-O0", "--run", "entry", "4", "4", f.to_str().unwrap()]);
    assert!(d.status.success() && o0.status.success());
    assert_eq!(
        String::from_utf8_lossy(&d.stdout),
        String::from_utf8_lossy(&o0.stdout)
    );
}

#[test]
fn separate_compilation_links_two_files() {
    let caller = write_temp(
        "caller.c",
        "extern int callee(int);
         int entry(int a) { int r; r = callee(a); return r + 1; }",
    );
    let callee = write_temp("callee.c", "int callee(int x) { return x * 10; }");
    let out = ccomp(&[
        "--run",
        "entry",
        "7",
        caller.to_str().unwrap(),
        callee.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("entry([7]) = 71"), "{stdout}");
}

#[test]
fn two_file_check_verifies_cor39() {
    let caller = write_temp(
        "cor39_caller.c",
        "extern int callee(int);
         int entry(int a) { int r; r = callee(a); return r + 1; }",
    );
    let callee = write_temp("cor39_callee.c", "int callee(int x) { return x * 10; }");
    let out = ccomp(&[
        "--check",
        "entry",
        "5",
        caller.to_str().unwrap(),
        callee.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("entry([5]) = 51"), "{stdout}");
    assert!(stdout.contains("Cor 3.9 ✓"), "{stdout}");
}

#[test]
fn three_file_check_is_rejected() {
    let a = write_temp("three_a.c", "int f1(int x) { return x; }");
    let b = write_temp("three_b.c", "int f2(int x) { return x; }");
    let c = write_temp("three_c.c", "int f3(int x) { return x; }");
    let out = ccomp(&[
        "--check",
        "f1",
        "1",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        c.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("Cor 3.9"));
}

#[test]
fn syntax_error_exits_nonzero_with_message() {
    let f = write_temp("bad.c", "int entry( {");
    let out = ccomp(&["--run", "entry", f.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn missing_file_exits_nonzero() {
    let out = ccomp(&["/nonexistent/nowhere.c"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn unknown_function_exits_nonzero() {
    let f = write_temp("nofn.c", PROG);
    let out = ccomp(&["--run", "absent", f.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("absent"));
}

#[test]
fn no_arguments_prints_usage() {
    let out = ccomp(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
