//! Shared plumbing for the `ccomp-o serve` test batteries: spawn the real
//! binary, speak the newline-framed protocol over its pipes, and compare
//! responses modulo the intentionally-variable members (the per-unit
//! `cache` tag and the per-request hit/miss stats).

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, ExitStatus, Stdio};

/// A fresh, empty cache directory unique to `tag` within this test binary.
pub fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ccomp-serve-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create cache dir");
    dir
}

/// A running `ccomp-o serve` child on stdin/stdout pipes.
pub struct Serve {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
}

impl Serve {
    /// Spawn `ccomp-o serve --cache-dir <dir> <extra...>`.
    pub fn spawn(cache_dir: &std::path::Path, extra: &[&str]) -> Serve {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ccomp-o"))
            .arg("serve")
            .arg("--cache-dir")
            .arg(cache_dir)
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn ccomp-o serve");
        let stdin = child.stdin.take();
        let stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        Serve {
            child,
            stdin,
            stdout,
        }
    }

    /// Send one frame and read one response line (trailing newline
    /// stripped). Panics on EOF — callers expect a live server.
    pub fn req(&mut self, frame: &str) -> String {
        self.send_raw(frame.as_bytes());
        self.read_line()
    }

    /// Send raw bytes (a trailing newline is appended) without reading.
    pub fn send_raw(&mut self, bytes: &[u8]) {
        let stdin = self.stdin.as_mut().expect("stdin open");
        stdin.write_all(bytes).expect("write frame");
        stdin.write_all(b"\n").expect("write newline");
        stdin.flush().expect("flush");
    }

    /// Read one response line (trailing newline stripped).
    pub fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed its stdout unexpectedly");
        line.truncate(line.trim_end().len());
        line
    }

    /// Close stdin (EOF) and wait; the server must exit cleanly.
    pub fn eof_wait(mut self) -> ExitStatus {
        drop(self.stdin.take());
        self.child.wait().expect("wait for server")
    }

    /// Kill the server mid-flight (the restart tests simulate a crash).
    pub fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Build a `compile` request frame over inline sources (the sources must
/// not need JSON escaping — keep them single-line and quote-free).
pub fn compile_req(id: u64, sources: &[&str]) -> String {
    let units: Vec<String> = sources
        .iter()
        .map(|s| format!("{{\"source\":\"{s}\"}}"))
        .collect();
    format!(
        "{{\"schema\":\"compcerto-serve/1\",\"op\":\"compile\",\"id\":{id},\"units\":[{}]}}",
        units.join(",")
    )
}

/// A `compile-result` frame with the cache-state members removed: what is
/// left must be byte-identical across cold, warm, partial and
/// post-restart runs (and across every `--jobs` setting).
pub fn artifacts_only(resp: &str) -> String {
    let stripped = resp
        .replace("\"cache\":\"miss\",", "")
        .replace("\"cache\":\"hit\",", "")
        .replace("\"cache\":\"evict-miss\",", "");
    let stats = stripped.rfind(",\"cache\":{").expect("request stats");
    stripped[..stats].to_string()
}

/// The `"cache":{...}` stats object of a `compile-result` frame.
pub fn request_stats(resp: &str) -> String {
    let at = resp.rfind("\"cache\":{").expect("request stats");
    resp[at..].trim_end_matches('}').to_string() + "}"
}
