//! Resilience-layer regression suite (ISSUE 6): the degradation ladder,
//! panic-isolated batches, and the four environment-fault classes.
//!
//! The headline satellite: a hand-poisoned optimizer pass must yield a
//! `Degraded` unit whose Asm still passes the seven-stage difftest oracle —
//! degradation loses optimization, never correctness.

use compcerto_core::lts::RunBudget;
use compiler::resilience::UnitOutcome;
use compiler::{
    check_query, compile_all_resilient, try_c_query, CompilerOptions, ExtLib, Jobs,
    QueryVerdict, StagePrograms,
};
use mem::Val;

const SRC: &str = "
    int helper(int x) { return x * 3 + 1; }
    int entry(int a) {
        int b;
        b = helper(a + 2);
        return b - a;
    }";

/// Hand-poisoned optimizer pass → `Degraded`, and the degraded unit's
/// seven-stage pipeline still agrees with itself end to end under the
/// difftest oracle.
#[test]
fn degraded_unit_still_passes_the_stage_oracle() {
    // Jobs::N(1): the unit compiles on this thread, where the pass panic
    // is armed.
    compiler::envfault::arm_pass_panic("constprop");
    let batch = compile_all_resilient(&[SRC], CompilerOptions::default(), Jobs::N(1));
    let symtab = batch.symtab.clone().expect("batch links");
    assert_eq!(batch.outcomes.len(), 1);
    let unit = match &batch.outcomes[0] {
        UnitOutcome::Degraded {
            unit,
            pass,
            reason,
            detail,
        } => {
            assert_eq!(pass, "constprop");
            assert_eq!(reason.name(), "optimizer-panic");
            assert!(detail.contains("envfault"), "detail: {detail}");
            (**unit).clone()
        }
        o => panic!("expected Degraded, got {}", o.label()),
    };

    // The degraded unit must be semantically intact across all seven
    // oracle stages.
    let units = vec![unit];
    let sp = StagePrograms::build(&units).expect("degraded unit still links");
    let lib = ExtLib::demo(symtab.clone());
    let budget = RunBudget::with_fuel(2_000_000).no_trace();
    for arg in [0, 3, 7] {
        let q = try_c_query(&symtab, &units[0], "entry", vec![Val::Int(arg)])
            .expect("entry query builds");
        match check_query(&sp, &symtab, &lib, &q, &budget) {
            QueryVerdict::Agree(_) => {}
            QueryVerdict::Skipped { stage } => panic!("arg {arg} budget-skipped at {stage}"),
            QueryVerdict::Finding { kind, detail } => {
                panic!("degraded unit diverged: {kind} on arg {arg}: {detail}")
            }
        }
    }
}

/// A panic in a mandatory pass cannot be absorbed by the ladder: the unit
/// is `Poisoned` with the pass attributed — and the rest of the batch
/// compiles normally.
#[test]
fn mandatory_pass_panic_poisons_only_its_unit() {
    compiler::envfault::arm_pass_panic("stacking");
    let srcs = [SRC, "int other(int z) { return z + 9; }"];
    let batch = compile_all_resilient(&srcs, CompilerOptions::default(), Jobs::N(1));
    match &batch.outcomes[0] {
        UnitOutcome::Poisoned { pass, panic_msg } => {
            assert_eq!(pass, "stacking");
            assert!(panic_msg.contains("envfault"), "msg: {panic_msg}");
        }
        o => panic!("expected Poisoned, got {}", o.label()),
    }
    assert_eq!(batch.outcomes[1].label(), "ok");
}

/// The degradation outcome is deterministic: re-running the poisoned
/// compile yields an identical outcome label, pass, and reason.
#[test]
fn ladder_outcomes_are_reproducible() {
    let render = |o: &UnitOutcome| match o {
        UnitOutcome::Degraded { pass, reason, .. } => {
            format!("degraded:{pass}:{}", reason.name())
        }
        o => o.label().to_string(),
    };
    let mut first: Option<String> = None;
    for _ in 0..3 {
        compiler::envfault::arm_pass_panic("cse");
        let batch = compile_all_resilient(&[SRC], CompilerOptions::default(), Jobs::N(1));
        let r = render(&batch.outcomes[0]);
        match &first {
            None => first = Some(r),
            Some(f) => assert_eq!(&r, f),
        }
    }
    assert_eq!(first.as_deref(), Some("degraded:cse:optimizer-panic"));
}

/// An injected allocator exhaustion unwinds out of a semantic run and is
/// contained; the outcome (which alloc died) is deterministic.
#[test]
fn injected_alloc_fault_is_contained_and_deterministic() {
    let run_with_fault = |site: u64| -> Result<String, String> {
        mem::envfault::arm_alloc_fault(site);
        let r = compiler::contain(|| {
            let mut m = mem::Mem::new();
            let mut blocks = Vec::new();
            for i in 0..10 {
                blocks.push(m.alloc(0, 8 * (i + 1)));
            }
            format!("allocated {} blocks", blocks.len())
        });
        mem::envfault::disarm();
        let _ = mem::envfault::take_fired();
        r
    };
    let a = run_with_fault(4);
    let b = run_with_fault(4);
    assert_eq!(a, b);
    assert_eq!(a, Err("envfault: injected allocator exhaustion".to_string()));
    // Past the workload's allocation count, nothing fires.
    let c = run_with_fault(64);
    assert_eq!(c, Ok("allocated 10 blocks".to_string()));
}

/// A zero-arg `main` wrapper so the closed-process runner can drive the
/// unit for the sink-write and deadline-jitter classes.
const CLOSED_SRC: &str = "
    int work(int n) {
        int i; int s;
        s = 0;
        for (i = 0; i < n; i = i + 1) { s = s + i * 3; }
        return s;
    }
    int main() {
        int r;
        r = work(50);
        return r;
    }";

/// Compile `CLOSED_SRC` and run its `main` under `budget`; returns a
/// stable rendering of the result (volatile elapsed/trace detail stripped).
fn run_closed_unit(budget: &RunBudget) -> String {
    use compiler::closed::{run_closed_budgeted, Closed};
    let batch = compile_all_resilient(&[CLOSED_SRC], CompilerOptions::default(), Jobs::N(1));
    let symtab = batch.symtab.clone().expect("links");
    let unit = batch.outcomes[0].unit().expect("compiles").clone();
    let chi = ExtLib::demo(symtab.clone());
    let closed = Closed::new(unit.clight_sem(&symtab), symtab, "main", chi);
    match run_closed_budgeted(&closed, budget) {
        Ok((code, _)) => format!("complete:{code}"),
        Err(stuck) => {
            let msg = stuck.to_string();
            if msg.contains("deadline budget exceeded") {
                "timed-out".to_string()
            } else {
                msg
            }
        }
    }
}

/// A sink-write fault drops exactly the armed line; the run completes and
/// the drop is accounted. (Graceful degradation: lost telemetry, not a
/// lost run.)
#[test]
fn sink_write_fault_drops_one_line_and_run_continues() {
    let _ = compcerto_core::obs::take_trace();
    let _ = compcerto_core::envfault::take_sink_dropped();

    let trace_run = |arm: Option<u64>| -> (usize, u64, String) {
        if let Some(site) = arm {
            compcerto_core::envfault::arm_sink_fault(site);
        }
        let out = run_closed_unit(&RunBudget::with_fuel(100_000).json_trace());
        compcerto_core::envfault::disarm();
        let lines = compcerto_core::obs::take_trace().len();
        let dropped = compcerto_core::envfault::take_sink_dropped();
        (lines, dropped, out)
    };

    let (clean_lines, clean_dropped, clean_out) = trace_run(None);
    assert_eq!(clean_dropped, 0);
    assert!(clean_lines > 2, "expected a real trace, got {clean_lines}");
    let (faulted_lines, faulted_dropped, faulted_out) = trace_run(Some(2));
    assert_eq!(faulted_dropped, 1);
    assert_eq!(faulted_lines, clean_lines - 1);
    // The run itself is untouched — only telemetry was lost.
    assert_eq!(clean_out, faulted_out);
}

/// Deadline jitter forces `TimedOut` at a deterministic strided check,
/// making the one wall-clock outcome campaign-testable.
#[test]
fn deadline_jitter_forces_deterministic_timeout() {
    use std::time::Duration;
    let outcome_with_jitter = |check: u64| -> String {
        compcerto_core::envfault::arm_deadline_jitter(check);
        // A one-hour deadline is never hit naturally; only the jitter can
        // trip the strided check.
        let budget = RunBudget::with_fuel(100_000)
            .deadline(Duration::from_secs(3600))
            .no_trace();
        let out = run_closed_unit(&budget);
        compcerto_core::envfault::disarm();
        let _ = compcerto_core::envfault::take_deadline_fired();
        out
    };
    // Check 1 happens at step 0: the jitter fires before any work.
    let a = outcome_with_jitter(1);
    let b = outcome_with_jitter(1);
    assert_eq!(a, b);
    assert_eq!(a, "timed-out");
    // A check index past the run's stride schedule never fires: the run
    // completes normally.
    let c = outcome_with_jitter(1_000);
    assert!(c != "timed-out", "jitter beyond schedule must not fire: {c}");
    assert!(c.starts_with("complete:"), "unexpected outcome: {c}");
}
