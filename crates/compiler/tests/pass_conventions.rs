//! Per-pass differential checks at the *exact* conventions of paper Table 3,
//! built compositionally from the convention combinators (rather than the
//! hand-tailored checks inside each pass's unit tests).

use compcerto_core::cc::Cl;
use compcerto_core::cklr::{CklrC, Ext, Inj, Injp};
use compcerto_core::conv::{ComposeConv, IdConv};
use compcerto_core::iface::{CQuery, CReply, C};
use compcerto_core::invariants::Wt;
use compcerto_core::sim::{check_fwd_sim, check_fwd_sim_env, EnvMode};
use compiler::{c_query, compile_all, CompilerOptions, WorkloadCfg, WorkloadGen};
use mem::Val;

/// A uniform environment: integer arguments are incremented; a pointer
/// argument is dereferenced as two longs and summed (matching
/// `ExtLib::demo`'s `sum2`). Reading through its own level's memory is what
/// makes the oracle *uniform* across levels (paper §4.5).
fn env(m: &CQuery) -> Option<CReply> {
    let retval = match m.args.first() {
        Some(p @ Val::Ptr(_, _)) => {
            let a = m.mem.loadv(mem::Chunk::I64, *p).unwrap_or(Val::Undef);
            let b = m
                .mem
                .loadv(mem::Chunk::I64, p.add(Val::Long(8)))
                .unwrap_or(Val::Undef);
            a.add(b)
        }
        Some(v) => v.add(Val::Int(1)),
        None => Val::Int(0),
    };
    Some(CReply {
        retval,
        mem: m.mem.clone(),
    })
}

/// `SimplLocals : injp ↠ inj` — checked with the CKLR-promoted conventions
/// of Table 3 row 1 (the asymmetric incoming/outgoing pair of paper §4.5).
#[test]
fn simpllocals_at_injp_inj() {
    let src = "
        extern int inc(int);
        int entry(int a) {
            int kept[2]; int lifted; int r;
            kept[0] = a; kept[1] = a * 2;
            lifted = kept[0] + kept[1];
            r = inc(lifted);
            return r + kept[1];
        }";
    let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
    let u = &units[0];
    let l1 = clight::ClightSem::new(u.clight.clone(), tbl.clone());
    let l2 = clight::ClightSem::new(u.clight_simpl.clone(), tbl.clone());
    let q = c_query(&tbl, u, "entry", vec![Val::Int(4)]);
    // Dual environments: injection conventions have no canonical reply
    // marshaling (the two sides' memories differ structurally), so the
    // checker runs one oracle per side and verifies their replies related.
    let mut env1 = env;
    let mut env2 = env;
    let report = check_fwd_sim_env(
        &l1,
        &l2,
        &CklrC {
            k: Injp::new(tbl.len() as u32),
        }, // outgoing: protected injection
        &CklrC {
            k: Inj::new(tbl.len() as u32),
        }, // incoming: plain injection
        &q,
        EnvMode::Dual(&mut env1, &mut env2),
        1_000_000,
    )
    .expect("SimplLocals simulation at injp ↠ inj");
    assert_eq!(report.external_calls, 1);
}

/// `Cshmgen : id ↠ id`.
#[test]
fn cshmgen_at_id() {
    let src = "
        extern int inc(int);
        int entry(int a) { int x; x = inc(a * 3); return x - a; }";
    let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
    let u = &units[0];
    let l1 = clight::ClightSem::new(u.clight_simpl.clone(), tbl.clone());
    let l2 = minor::CsharpSem::new(u.csharp.clone(), tbl.clone());
    let q = c_query(&tbl, u, "entry", vec![Val::Int(6)]);
    check_fwd_sim(
        &l1,
        &l2,
        &IdConv::<C>::new(),
        &IdConv::<C>::new(),
        &q,
        &mut env,
        1_000_000,
    )
    .expect("Cshmgen simulation at id ↠ id");
}

/// `Selection : wt·ext ↠ wt·ext` — the composed invariant-plus-CKLR
/// convention of Table 3, built with [`ComposeConv`].
#[test]
fn selection_at_wt_ext() {
    let src = "
        extern int inc(int);
        int entry(int a) {
            int x; int r;
            x = a * 1 + 0;
            r = inc(x * 8);
            return r / 2;
        }";
    let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
    let u = &units[0];
    let l1 = minor::CminorSem::new(u.cminor.clone(), tbl.clone());
    let l2 = minor::CminorSelSem::new(u.cminorsel.clone(), tbl.clone());
    let q = c_query(&tbl, u, "entry", vec![Val::Int(9)]);
    let wt_ext = ComposeConv::new(Wt, CklrC { k: Ext });
    let report = check_fwd_sim(&l1, &l2, &wt_ext, &wt_ext, &q, &mut env, 1_000_000)
        .expect("Selection simulation at wt·ext ↠ wt·ext");
    assert_eq!(report.external_calls, 1);
}

/// `RTLgen : ext ↠ ext`.
#[test]
fn rtlgen_at_ext() {
    let src = "
        extern int inc(int);
        int entry(int n) {
            int s; int i; int r;
            s = 0;
            for (i = 0; i < n; i = i + 1) { s = s + i; }
            r = inc(s);
            return r;
        }";
    let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
    let u = &units[0];
    let l1 = minor::CminorSelSem::new(u.cminorsel.clone(), tbl.clone());
    let l2 = rtl::RtlSem::new(u.rtl.clone(), tbl.clone());
    let q = c_query(&tbl, u, "entry", vec![Val::Int(7)]);
    let ext = CklrC { k: Ext };
    check_fwd_sim(&l1, &l2, &ext, &ext, &q, &mut env, 1_000_000)
        .expect("RTLgen simulation at ext ↠ ext");
}

/// `Allocation : wt·ext·CL ↠ wt·ext·CL` — the full three-factor convention
/// of Table 3 (invariant · CKLR · structural), where the middle interface
/// changes from values to locations.
#[test]
fn allocation_at_wt_ext_cl() {
    let src = "
        int entry(int a, int b) {
            int c; int d;
            c = a * b + 3;
            d = c - a;
            return c + d;
        }";
    let (units, tbl) = compile_all(&[src], CompilerOptions::default()).unwrap();
    let u = &units[0];
    let l1 = rtl::RtlSem::new(u.rtl_opt.clone(), tbl.clone());
    let l2 = backend::LtlSem::new(u.ltl.clone(), tbl.clone());
    let q = c_query(&tbl, u, "entry", vec![Val::Int(5), Val::Int(6)]);
    let conv = ComposeConv::new(Wt, ComposeConv::new(CklrC { k: Ext }, Cl));
    check_fwd_sim(&l1, &l2, &conv, &conv, &q, &mut env, 1_000_000)
        .expect("Allocation simulation at wt·ext·CL ↠ wt·ext·CL");
}

/// The whole front end composed: Clight (pre-SimplLocals) down to optimized
/// RTL under `injp ↠ inj` (the vertical composition of all the C-level
/// passes, fused per Lemma 5.3 and App. B).
#[test]
fn front_end_composed_at_injp_inj() {
    let mut g = WorkloadGen::new(5150);
    for _ in 0..3 {
        let (src, arity) = g.gen_program(&WorkloadCfg::default());
        let (units, tbl) = compile_all(&[&src], CompilerOptions::default()).unwrap();
        let u = &units[0];
        let l1 = clight::ClightSem::new(u.clight.clone(), tbl.clone());
        let l2 = rtl::RtlSem::new(u.rtl_opt.clone(), tbl.clone());
        for args in g.gen_queries(arity, 2) {
            let q = c_query(&tbl, u, "entry", args.clone());
            let mut env1 = env;
            let mut env2 = env;
            check_fwd_sim_env(
                &l1,
                &l2,
                &CklrC {
                    k: Injp::new(tbl.len() as u32),
                },
                &CklrC {
                    k: Inj::new(tbl.len() as u32),
                },
                &q,
                EnvMode::Dual(&mut env1, &mut env2),
                2_000_000,
            )
            .unwrap_or_else(|e| panic!("front end, args {args:?}: {e}\n{src}"));
        }
    }
}
